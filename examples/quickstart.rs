//! Quickstart: deploy DeepFlow on an uninstrumented Bookinfo cluster and
//! pull a distributed trace — in zero code.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use deepflow::mesh::apps;
use deepflow::prelude::*;

fn main() {
    println!("== DeepFlow quickstart ==\n");
    println!("Building a 3-node cluster running Istio Bookinfo (4 services + 4 Envoy sidecars),");
    println!("with NO tracing instrumentation anywhere.\n");

    let mut make_tracer = || apps::no_tracer();
    let (mut world, handles) = apps::bookinfo(100.0, DurationNs::from_secs(3), &mut make_tracer);

    println!("Deploying DeepFlow while the services run: verified eBPF programs on all");
    println!("10 syscall ABIs of every node, capture taps on pod veths and node NICs...\n");
    let mut df = Deployment::install(&mut world).expect("verifier admits the programs");

    df.run(
        &mut world,
        TimeNs::from_secs(4),
        DurationNs::from_millis(100),
    );

    let client = &world.clients[handles.client];
    println!(
        "Workload: {} requests fired, {} completed, p50 {}, p99 {}\n",
        client.fired,
        client.completed,
        client.hist.p50(),
        client.hist.p99()
    );
    let stats = df.agent_stats();
    println!(
        "Agents captured {} syscall messages -> {} sys spans + {} net spans;",
        stats.messages, stats.sys_spans, stats.net_spans
    );
    println!("server stores {} spans.\n", df.server.span_count());

    // The troubleshooting entry point: "users can select spans that they
    // are interested in, such as time-consuming invocations" (§3.3.2).
    let slowest = df
        .server
        .slowest_span(TimeNs::ZERO, TimeNs::from_secs(4))
        .expect("spans exist");
    let trace = df.server.trace(slowest);
    println!(
        "Slowest request's assembled trace ({} spans, {} end-to-end):\n",
        trace.len(),
        trace.duration()
    );
    print!("{}", trace.render_text());

    println!("\nEvery span above was produced without touching a line of application code.");
}
