//! The Fig. 11 case study (§4.1.1): a client hits timeouts/404s on one
//! endpoint; the invocation path is full of blind spots; operators deploy
//! DeepFlow on the live system and localise the failure — one pod of the
//! Nginx ingress — "within 15 minutes" (here: one query).
//!
//! ```sh
//! cargo run --release --example nginx_404_debugging
//! ```

use deepflow::mesh::apps;
use deepflow::prelude::*;
use std::collections::HashMap;

fn main() {
    println!("== Case study: performance debugging during execution (Fig. 11) ==\n");
    println!("An L4 VIP balances across three nginx-ingress pods in front of the");
    println!("checkout service. Clients intermittently get 404s. Which pod is broken?\n");

    // Pod #1 is silently misconfigured: it answers /api/checkout itself
    // with 404 instead of forwarding.
    let (mut world, handles, _vip) =
        apps::nginx_ingress_cluster(150.0, DurationNs::from_secs(3), 1);

    // "Without modifying a single line of code, operators deploy DeepFlow
    // while the service is active."
    let mut df = Deployment::install(&mut world).expect("verifier admits the programs");
    df.run(
        &mut world,
        TimeNs::from_secs(4),
        DurationNs::from_millis(100),
    );

    let client = &world.clients[handles.client];
    println!(
        "Client view: {} completed, {} of them errors ({:.0}%). Useless for localisation.\n",
        client.completed,
        client.errors,
        100.0 * client.errors as f64 / client.completed.max(1) as f64
    );

    // The DeepFlow workflow: query error spans, group by pod tag.
    let errors = df.server.error_spans(TimeNs::ZERO, TimeNs::from_secs(4));
    let mut by_pod: HashMap<String, usize> = HashMap::new();
    let mut ok_by_pod: HashMap<String, usize> = HashMap::new();
    let all = df.server.span_list(&SpanQuery {
        endpoint: Some("GET /api/checkout".to_string()),
        limit: usize::MAX,
        ..Default::default()
    });
    for s in &all {
        if s.capture.tap_side != TapSide::ServerProcess {
            continue;
        }
        let pod = s
            .tags
            .resource
            .pod_id
            .and_then(|id| df.server.dictionary().pod_name(id).map(str::to_string))
            .unwrap_or_else(|| "?".to_string());
        if s.status.is_error() {
            *by_pod.entry(pod).or_default() += 1;
        } else {
            *ok_by_pod.entry(pod).or_default() += 1;
        }
    }
    println!("Server-side spans for GET /api/checkout, grouped by the pod tag");
    println!("(smart-encoded at ingest, resolved at query):\n");
    let mut pods: Vec<&String> = ok_by_pod.keys().chain(by_pod.keys()).collect();
    pods.sort();
    pods.dedup();
    for pod in pods {
        let ok = ok_by_pod.get(pod).copied().unwrap_or(0);
        let err = by_pod.get(pod).copied().unwrap_or(0);
        let marker = if err > ok { "  <-- ROOT CAUSE" } else { "" };
        println!("  {pod:<22} ok={ok:<5} err={err:<5}{marker}");
    }

    let culprit = by_pod
        .iter()
        .max_by_key(|(_, n)| **n)
        .map(|(p, _)| p.clone())
        .unwrap_or_default();
    println!("\nOne query pinpoints the failing pod: {culprit}.");
    println!(
        "({} error spans total; every one tagged with its pod in zero code.)",
        errors.len()
    );

    // Show one offending trace end to end.
    if let Some(err_span) = errors
        .iter()
        .find(|s| s.capture.tap_side == TapSide::ServerProcess)
    {
        let trace = df.server.trace(err_span.span_id);
        println!("\nOne offending request, hop by hop:\n");
        print!("{}", trace.render_text());
    }
}
