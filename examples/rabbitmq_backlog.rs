//! The Fig. 12 / §4.1.3 case study: "frequent service latency increases
//! and connection terminations". Six hours with app-level tools; one
//! minute with DeepFlow's cross-layer correlation: the broker's queue
//! backlog (zero-window advertisements) is causing the TCP resets.
//!
//! ```sh
//! cargo run --release --example rabbitmq_backlog
//! ```

use deepflow::mesh::apps;
use deepflow::prelude::*;

fn main() {
    println!("== Case study: cooperative debugging via metrics + traces (Fig. 12) ==\n");
    println!("An order producer publishes to a RabbitMQ-style broker whose consumer");
    println!("has silently wedged.\n");

    let (mut world, handles) = apps::amqp_backlog(800.0, DurationNs::from_secs(3));
    let mut df = Deployment::install(&mut world).expect("install");
    // Run long enough for the 60s session windows to expire unanswered
    // publishes into Incomplete spans.
    df.run(
        &mut world,
        TimeNs::from_secs(200),
        DurationNs::from_secs(10),
    );

    let client = &world.clients[handles.client];
    println!(
        "Symptom (application view): {} publishes fired, {} acked, {} failed/terminated.",
        client.fired, client.completed, client.failed
    );
    println!("App-level tracing alone would stop here: 'the spans are affected'.\n");

    // Step 1 (tracing): the affected spans.
    let all = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let incomplete: Vec<&Span> = all
        .iter()
        .filter(|s| s.status == SpanStatus::Incomplete && s.l7_protocol == L7Protocol::Amqp)
        .collect();
    println!(
        "DeepFlow step 1 — traces: {} AMQP publish sessions never got a response",
        incomplete.len()
    );

    // Step 2 (correlation): the network metrics attached to those very spans.
    let mut zero_windows = 0u64;
    let mut resets = 0u64;
    let mut retx = 0u64;
    for s in &incomplete {
        if let Some(m) = s.flow_metrics {
            zero_windows = zero_windows.max(m.zero_windows);
            resets = resets.max(m.resets);
            retx = retx.max(m.retransmissions);
        }
    }
    println!("DeepFlow step 2 — correlated flow metrics on the affected flow:");
    println!("    zero-window advertisements : {zero_windows}");
    println!("    TCP resets                 : {resets}");
    println!("    retransmissions            : {retx}\n");

    // The agents' flow tables agree (metric-by-metric analysis, Fig. 12).
    let mut totals = deepflow::types::FlowMetrics::default();
    for agent in df.agents.values() {
        totals.merge(&agent.flows.totals());
    }
    println!(
        "Cluster-wide flow metrics: {} zero-windows, {} resets.",
        totals.zero_windows, totals.resets
    );
    println!();
    println!("Diagnosis in one view: the broker's receive queue backlogged (zero windows),");
    println!("escalating to connection resets — the broker's consumer, not the network,");
    println!("is the root cause. (\"found in one minute\", §4.1.3.)");
}
